//! A minimal Rust lexer.
//!
//! The build environment has no registry access, so `syn` is unavailable;
//! this lexer is the in-repo stand-in (same policy as the `proptest` /
//! `criterion` shims). It produces exactly what the lint rules need — a
//! token stream with line numbers, comments stripped, string/char literals
//! recognized (including raw and byte strings) so that rule patterns never
//! fire on text inside comments or literals.

/// One lexed token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `_`).
    Ident(String),
    /// String literal *content* (quotes and raw-string hashes stripped,
    /// escape sequences left as written).
    Str(String),
    /// A single punctuation character. Multi-character operators appear as
    /// consecutive tokens (`::` is `Punct(':'), Punct(':')`).
    Punct(char),
    /// Numeric literal (value not needed by any rule).
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
    /// A character or byte literal such as `'x'` or `b'\n'`.
    CharLit,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Lexes `src` into a token stream. Unterminated comments/literals are
/// tolerated (the remainder is consumed) — the lint must never panic on the
/// code it inspects.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.quote(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// A regular `"…"` string with escapes. The opening quote has not been
    /// consumed yet.
    fn string(&mut self, line: u32) {
        self.bump(); // `"`
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    content.push('\\');
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                c => content.push(c),
            }
        }
        self.push(Tok::Str(content), line);
    }

    /// `'a` lifetimes vs `'x'` char literals.
    fn quote(&mut self, line: u32) {
        self.bump(); // `'`
        match self.peek(0) {
            // escape: definitely a char literal
            Some('\\') => {
                self.bump();
                self.bump(); // escaped char
                             // unicode escapes: `'\u{1F600}'`
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::CharLit, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'x'` is a char literal; `'abc` (no closing quote) is a
                // lifetime
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(Tok::CharLit, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            // `'('` and friends
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::CharLit, line);
            }
            None => self.push(Tok::CharLit, line),
        }
    }

    /// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`), raw byte
    /// strings (`br#"…"#`), and byte chars (`b'x'`). Returns `false` when
    /// the `r`/`b` at the cursor is just the start of an identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let first = self.peek(0).unwrap();
        let (skip, next) = match (first, self.peek(1)) {
            ('r', Some('"')) => (1, '"'),
            ('r', Some('#')) => (1, '#'),
            ('b', Some('"')) => (1, '"'),
            ('b', Some('\'')) => (1, '\''),
            ('b', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => {
                (2, self.peek(2).unwrap())
            }
            _ => return false,
        };
        // `r#foo` raw identifiers: `#` not followed by `"` or more hashes
        // ending in `"` is an identifier, not a raw string
        if next == '#' {
            let mut i = skip;
            while self.peek(i) == Some('#') {
                i += 1;
            }
            if self.peek(i) != Some('"') {
                return false;
            }
        }
        for _ in 0..skip {
            self.bump();
        }
        match next {
            '\'' => {
                // byte char `b'x'`
                self.bump(); // `'`
                if self.peek(0) == Some('\\') {
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::CharLit, line);
            }
            '"' => self.string(line),
            _ => {
                // raw string with `#` guards
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                self.bump(); // opening `"`
                let mut content = String::new();
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        let mut matched = 0;
                        while matched < hashes {
                            if self.peek(0) == Some('#') {
                                self.bump();
                                matched += 1;
                            } else {
                                content.push('"');
                                for _ in 0..matched {
                                    content.push('#');
                                }
                                continue 'outer;
                            }
                        }
                        break;
                    }
                    content.push(c);
                }
                self.push(Tok::Str(content), line);
            }
        }
        true
    }

    fn ident(&mut self, line: u32) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(s), line);
    }

    fn number(&mut self, line: u32) {
        // digits, radix prefixes, suffixes; a `.` is consumed only when
        // followed by a digit (so `1..5` stays a range)
        while let Some(c) = self.peek(0) {
            let in_number = c == '_'
                || c.is_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.bump();
        }
        self.push(Tok::Num, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("foo::bar"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Punct(':'),
                Tok::Punct(':'),
                Tok::Ident("bar".into()),
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(kinds("a // HashMap\nb"), kinds("a\nb"));
        assert_eq!(kinds("a /* Instant::now() /* nested */ */ b"), kinds("a b"));
    }

    #[test]
    fn strings_are_literals_not_tokens() {
        let toks = kinds(r#"m.incr("tx.total")"#);
        assert!(toks.contains(&Tok::Str("tx.total".into())));
        // the key must not surface as identifiers
        assert!(!toks.contains(&Tok::Ident("tx".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            kinds(r##"r#"Hash"Map"#"##),
            vec![Tok::Str("Hash\"Map".into())]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![Tok::Str("bytes".into())]);
        assert_eq!(kinds("br#\"raw\"#"), vec![Tok::Str("raw".into())]);
        assert_eq!(kinds("b'x'"), vec![Tok::CharLit]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str"),
            vec![Tok::Punct('&'), Tok::Lifetime, Tok::Ident("str".into()),]
        );
        assert_eq!(kinds("'x'"), vec![Tok::CharLit]);
        assert_eq!(kinds(r"'\n'"), vec![Tok::CharLit]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        assert_eq!(kinds(r#""a\"b""#), vec![Tok::Str(r#"a\"b"#.into())]);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("1..5"),
            vec![Tok::Num, Tok::Punct('.'), Tok::Punct('.'), Tok::Num]
        );
        assert_eq!(kinds("0xFF_u64 1.5e3"), vec![Tok::Num, Tok::Num]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn underscore_is_an_ident() {
        assert_eq!(
            kinds("_ =>"),
            vec![Tok::Ident("_".into()), Tok::Punct('='), Tok::Punct('>'),]
        );
    }
}
