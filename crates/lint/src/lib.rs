//! `ssr-lint` — workspace-wide determinism & protocol-invariant static
//! analysis.
//!
//! The simulator's correctness story — and every chaos/obs gate built on it
//! — rests on runs being a deterministic function of `(config, seed)`.
//! PR 1/PR 2 enforce that *dynamically* (byte-identical same-seed manifest
//! and trace checks); this crate makes the underlying invariants *locally
//! checkable at the source level*, so a stray `HashMap`, wall-clock read,
//! typo'd metric key, or variant-swallowing wildcard arm fails CI before a
//! run ever happens.
//!
//! The environment has no registry access, so instead of `syn` the crate
//! carries its own minimal [`lexer`] (the same stand-in policy as the
//! workspace's `proptest`/`criterion` shims); the [`rules`] run over the
//! token stream. [`workspace`] discovers the files, [`baseline`] holds
//! reviewed suppressions, and `src/main.rs` is the CI-gating CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::Baseline;
pub use rules::{analyze, Finding, LexedFile};
