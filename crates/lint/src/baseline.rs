//! Reviewed suppressions.
//!
//! A baseline file records findings the team has looked at and accepted —
//! e.g. the experiment binaries reading the wall clock to report real
//! elapsed time in their manifests. Entries are keyed by `(rule, file,
//! symbol)` rather than line numbers, so they survive unrelated edits; one
//! entry suppresses every occurrence of that symbol in that file, which is
//! the right granularity for "this file is allowed to use X".
//!
//! Format (parsed with the workspace's dependency-free JSON layer):
//!
//! ```json
//! {
//!   "schema": "ssr-lint-baseline/1",
//!   "suppressions": [
//!     { "rule": "determinism-time",
//!       "file": "crates/bench/src/bin/exp_chaos.rs",
//!       "symbol": "Instant::now",
//!       "reason": "wall-clock duration reported in the manifest" }
//!   ]
//! }
//! ```

use ssr_obs::json::{self, Value};

use crate::rules::Finding;

/// One reviewed suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// Rule id the suppression applies to.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// The suppressed symbol (must equal the finding's `symbol`).
    pub symbol: String,
    /// Why this is acceptable — required, so the file stays reviewable.
    pub reason: String,
}

/// A parsed baseline.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// All suppressions, in file order.
    pub suppressions: Vec<Suppression>,
}

/// The schema tag written/accepted by this version.
pub const SCHEMA: &str = "ssr-lint-baseline/1";

impl Baseline {
    /// Parses a baseline document. Returns a message suitable for the CLI
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported baseline schema {other:?}")),
            None => return Err("baseline is missing the schema field".to_string()),
        }
        let Some(Value::Arr(items)) = doc.get("suppressions") else {
            return Err("baseline is missing the suppressions array".to_string());
        };
        let mut suppressions = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let field = |name: &str| -> Result<String, String> {
                item.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("suppression #{i} is missing {name:?}"))
            };
            suppressions.push(Suppression {
                rule: field("rule")?,
                file: field("file")?,
                symbol: field("symbol")?,
                reason: field("reason")?,
            });
        }
        Ok(Baseline { suppressions })
    }

    /// `true` iff `finding` is covered by a suppression.
    pub fn suppresses(&self, finding: &Finding) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == finding.rule && s.file == finding.file && s.symbol == finding.symbol)
    }

    /// Splits findings into (live, suppressed-count), and reports
    /// suppressions that matched nothing (stale entries worth pruning).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<&Suppression>) {
        let mut live = Vec::new();
        let mut suppressed = 0usize;
        let mut used = vec![false; self.suppressions.len()];
        for f in findings {
            let hit = self
                .suppressions
                .iter()
                .position(|s| s.rule == f.rule && s.file == f.file && s.symbol == f.symbol);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => live.push(f),
            }
        }
        let stale = self
            .suppressions
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(s, _)| s)
            .collect();
        (live, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, symbol: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            symbol: symbol.to_string(),
            message: String::new(),
        }
    }

    const DOC: &str = r#"{
        "schema": "ssr-lint-baseline/1",
        "suppressions": [
            { "rule": "determinism-time",
              "file": "crates/bench/src/bin/e.rs",
              "symbol": "Instant::now",
              "reason": "wall-clock reporting" }
        ]
    }"#;

    #[test]
    fn parse_and_match() {
        let b = Baseline::parse(DOC).unwrap();
        assert_eq!(b.suppressions.len(), 1);
        assert!(b.suppresses(&finding(
            crate::rules::RULE_TIME,
            "crates/bench/src/bin/e.rs",
            "Instant::now"
        )));
        // different file, symbol, or rule: not suppressed
        assert!(!b.suppresses(&finding(
            crate::rules::RULE_TIME,
            "crates/bench/src/bin/other.rs",
            "Instant::now"
        )));
        assert!(!b.suppresses(&finding(
            crate::rules::RULE_TIME,
            "crates/bench/src/bin/e.rs",
            "SystemTime::now"
        )));
    }

    #[test]
    fn apply_reports_stale_entries() {
        let b = Baseline::parse(DOC).unwrap();
        let (live, suppressed, stale) = b.apply(vec![finding(
            crate::rules::RULE_COLLECTIONS,
            "crates/core/src/cache.rs",
            "HashMap",
        )]);
        assert_eq!(live.len(), 1);
        assert_eq!(suppressed, 0);
        assert_eq!(stale.len(), 1, "unused suppression must be reported");
    }

    #[test]
    fn one_entry_suppresses_all_occurrences_in_a_file() {
        let b = Baseline::parse(DOC).unwrap();
        let fs = vec![
            finding(
                crate::rules::RULE_TIME,
                "crates/bench/src/bin/e.rs",
                "Instant::now",
            ),
            finding(
                crate::rules::RULE_TIME,
                "crates/bench/src/bin/e.rs",
                "Instant::now",
            ),
        ];
        let (live, suppressed, stale) = b.apply(fs);
        assert!(live.is_empty());
        assert_eq!(suppressed, 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"schema": "other/9", "suppressions": []}"#).is_err());
        assert!(Baseline::parse(
            r#"{"schema": "ssr-lint-baseline/1",
                "suppressions": [{"rule": "x"}]}"#
        )
        .is_err());
    }
}
