//! Workspace file discovery.
//!
//! The scan is path-convention based (no Cargo metadata needed): every
//! `crates/<name>/src/**/*.rs` file belongs to crate `<name>`, and the
//! workspace-level integration-test package contributes
//! `tests/{src,tests}/**/*.rs` as crate `integration-tests`. Files are
//! returned sorted by path so analysis output is deterministic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::LexedFile;

/// Locates the workspace root: `start` or the nearest ancestor containing a
/// `crates/` directory next to a `Cargo.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

/// Reads and lexes every workspace source file under `root`.
pub fn scan(root: &Path) -> io::Result<Vec<LexedFile>> {
    let mut sources: Vec<(String, PathBuf)> = Vec::new(); // (crate, abs path)

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        collect_rs(&dir.join("src"), name, &mut sources)?;
    }
    // workspace-level integration tests
    for sub in ["src", "tests"] {
        collect_rs(
            &root.join("tests").join(sub),
            "integration-tests",
            &mut sources,
        )?;
    }

    sources.sort_by(|a, b| a.1.cmp(&b.1));
    let mut files = Vec::with_capacity(sources.len());
    for (crate_name, path) in sources {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(LexedFile::new(&crate_name, &rel, &text));
    }
    Ok(files)
}

/// Recursively collects `*.rs` files under `dir` (silently skips a missing
/// directory — not every crate has every subtree).
fn collect_rs(dir: &Path, crate_name: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_string(), path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scan sees this workspace itself: the lint crate's own sources
    /// must be among the files, attributed to crate `lint`.
    #[test]
    fn scans_own_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = scan(&root).expect("scan");
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/workspace.rs" && f.crate_name == "lint"));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/core/src/cache.rs" && f.crate_name == "core"));
        assert!(
            files
                .iter()
                .any(|f| f.rel_path.starts_with("tests/tests/")
                    && f.crate_name == "integration-tests")
        );
        // deterministic order
        let mut paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        let sorted = {
            let mut s = paths.clone();
            s.sort();
            s
        };
        assert_eq!(paths, sorted);
        paths.dedup();
        assert_eq!(paths.len(), files.len(), "no file scanned twice");
    }
}
