//! End-to-end CLI test: a fixture workspace seeded with one violation per
//! rule must make `ssr-lint` exit non-zero and report each of them, and a
//! baseline built from those findings must suppress them all back to a
//! clean exit. This is the contract CI relies on.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use ssr_obs::json::{self, Value};

/// A throwaway workspace rooted in the target dir (cleaned up on drop).
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_lint(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ssr-lint"))
        .args(args)
        .output()
        .expect("spawn ssr-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

/// One seeded violation per rule, all in crate `core` (a protocol crate).
fn seeded_fixture(name: &str) -> Fixture {
    let fx = Fixture::new(name);
    fx.write("Cargo.toml", "[workspace]\n");
    // missing #![forbid(unsafe_code)] -> forbid-unsafe
    fx.write("crates/core/src/lib.rs", "pub mod bad;\npub mod isprp;\n");
    // HashMap -> determinism-collections; Instant::now -> determinism-time;
    // unregistered key -> metric-registry
    fx.write(
        "crates/core/src/bad.rs",
        r#"
use std::collections::HashMap;
pub fn f(m: &dyn Meter) -> HashMap<u32, u32> {
    let _t = std::time::Instant::now();
    m.incr("typo.key");
    HashMap::new()
}
"#,
    );
    // wildcard arm swallowing Payload variants in a handler file
    fx.write(
        "crates/core/src/isprp.rs",
        r#"
pub fn handle(p: Payload) {
    match p {
        Payload::Join { .. } => accept(),
        _ => ignore(),
    }
}
"#,
    );
    fx
}

#[test]
fn seeded_violations_fail_and_baseline_suppresses() {
    let fx = seeded_fixture("seeded");
    let root = fx.root.to_str().unwrap();

    // 1. every seeded rule fires, exit code 1
    let (code, stdout, _) = run_lint(&["--workspace", "--root", root, "--json"]);
    assert_eq!(code, 1, "seeded violations must gate");
    let doc = json::parse(&stdout).expect("valid JSON report");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("ssr-lint/1")
    );
    let findings = doc.get("findings").and_then(Value::as_arr).unwrap();
    let rules: BTreeSet<&str> = findings
        .iter()
        .map(|f| f.get("rule").and_then(Value::as_str).unwrap())
        .collect();
    let expected: BTreeSet<&str> = [
        "determinism-collections",
        "determinism-time",
        "forbid-unsafe",
        "match-wildcard",
        "metric-registry",
    ]
    .into();
    assert_eq!(rules, expected, "one finding family per seeded violation");

    // 2. a baseline built from the findings suppresses them all -> exit 0
    let entries: Vec<String> = findings
        .iter()
        .map(|f| {
            let field = |k: &str| f.get(k).and_then(Value::as_str).unwrap();
            format!(
                r#"{{"rule": {:?}, "file": {:?}, "symbol": {:?}, "reason": "accepted in test"}}"#,
                field("rule"),
                field("file"),
                field("symbol")
            )
        })
        .collect();
    fx.write(
        "baseline.json",
        &format!(
            r#"{{"schema": "ssr-lint-baseline/1", "suppressions": [{}]}}"#,
            entries.join(",")
        ),
    );
    let baseline = fx.root.join("baseline.json");
    let (code, stdout, _) = run_lint(&[
        "--workspace",
        "--root",
        root,
        "--baseline",
        baseline.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, 0, "baselined findings must not gate:\n{stdout}");
    let doc = json::parse(&stdout).unwrap();
    assert_eq!(
        doc.get("findings").and_then(Value::as_arr).map(|a| a.len()),
        Some(0)
    );
    assert_eq!(
        doc.get("suppressed").and_then(Value::as_u64),
        Some(findings.len() as u64)
    );
}

#[test]
fn clean_fixture_passes_and_stale_suppression_warns() {
    let fx = Fixture::new("clean");
    fx.write("Cargo.toml", "[workspace]\n");
    fx.write(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn ok() {}\n",
    );
    let root = fx.root.to_str().unwrap();

    let (code, _, _) = run_lint(&["--workspace", "--root", root]);
    assert_eq!(code, 0, "clean tree must pass");

    // a suppression that matches nothing is reported as stale (still exit 0)
    fx.write(
        "baseline.json",
        r#"{"schema": "ssr-lint-baseline/1", "suppressions": [
            {"rule": "determinism-time", "file": "crates/core/src/gone.rs",
             "symbol": "Instant::now", "reason": "file was deleted"}]}"#,
    );
    let baseline = fx.root.join("baseline.json");
    let (code, _, stderr) = run_lint(&[
        "--workspace",
        "--root",
        root,
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(
        stderr.contains("stale baseline entry"),
        "stale entries must be surfaced: {stderr}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let (code, _, stderr) = run_lint(&["--no-such-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"));

    let (code, _, _) = run_lint(&[]);
    assert_eq!(code, 2, "missing --workspace is a usage error");

    // unreadable baseline is an error, not a silent pass
    let fx = Fixture::new("badbase");
    fx.write("Cargo.toml", "[workspace]\n");
    fx.write("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n");
    let (code, _, stderr) = run_lint(&[
        "--workspace",
        "--root",
        fx.root.to_str().unwrap(),
        "--baseline",
        "/nonexistent/baseline.json",
    ]);
    assert_eq!(code, 2);
    assert!(stderr.contains("baseline"));
}

#[test]
fn real_workspace_with_shipped_baseline_is_clean() {
    // the repo's own tree + lint-baseline.json is the CI invocation; it must
    // be green or CI is red before this test even runs.
    let repo =
        ssr_lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("repo root");
    let baseline = repo.join("lint-baseline.json");
    let (code, stdout, stderr) = run_lint(&[
        "--workspace",
        "--root",
        repo.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(
        code, 0,
        "shipped workspace must lint clean:\n{stdout}{stderr}"
    );
    assert!(
        !stderr.contains("stale baseline entry"),
        "shipped baseline must not carry stale entries: {stderr}"
    );
}
