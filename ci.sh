#!/usr/bin/env bash
# Offline CI: build, test, lint, docs, format check, then the chaos
# smoke matrix (exp_chaos --smoke: self-stabilization gate), the sweep
# smoke (orchestrator byte-determinism across --workers), the
# observability smoke path (fig1_loopy with a JSONL trace sink + obs
# summarize/diff/causes + chaos manifest determinism with the causal
# ledger on + obs flame/top attribution gates), and the perf-baseline
# smoke (exp_perf --smoke artifact gate). Mirrors `just ci`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --quiet

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ssr-lint =="
cargo run --release -q -p ssr-lint -- --workspace --baseline lint-baseline.json

echo "== rustdoc =="
# every crate documents warning-free (broken intra-doc links are errors)
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== fmt =="
cargo fmt --all --check

echo "== chaos smoke =="
./target/release/exp_chaos --smoke

echo "== sweep smoke =="
./scripts/sweep_smoke.sh

echo "== obs smoke =="
./scripts/obs_smoke.sh

echo "== perf smoke =="
# Smoke the perf-baseline path into a scratch file (the checked-in
# BENCH_perf.json is only refreshed by deliberate full runs), then gate
# that the artifact parses, carries the current git describe, and has
# enough scenarios for obs diff to be meaningful.
perf_out="$(mktemp -d)/BENCH_perf.json"
./target/release/exp_perf --smoke --out "$perf_out"
grep -q '"schema": "ssr-bench-perf/2"' "$perf_out"
describe="$(git describe --always --dirty 2>/dev/null || true)"
if [ -n "$describe" ]; then
  grep -qF "\"git\": \"$describe\"" "$perf_out" || {
    echo "perf smoke: git field does not match 'git describe --always --dirty' ($describe)" >&2
    exit 1
  }
fi
scenarios="$(grep -c '"name": "' "$perf_out")"
if [ "$scenarios" -lt 3 ]; then
  echo "perf smoke: expected >= 3 scenarios, got $scenarios" >&2
  exit 1
fi
rm -rf "$(dirname "$perf_out")"

echo "CI OK"
