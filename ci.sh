#!/usr/bin/env bash
# Offline CI: build, test, lint, format check, then the chaos smoke
# matrix (exp_chaos --smoke: self-stabilization gate) and the
# observability smoke path (fig1_loopy with a JSONL trace sink + obs
# summarize/diff + chaos manifest determinism). Mirrors `just ci`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --quiet

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ssr-lint =="
cargo run --release -q -p ssr-lint -- --workspace --baseline lint-baseline.json

echo "== fmt =="
cargo fmt --all --check

echo "== chaos smoke =="
./target/release/exp_chaos --smoke

echo "== obs smoke =="
./scripts/obs_smoke.sh

echo "CI OK"
