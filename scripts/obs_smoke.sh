#!/usr/bin/env bash
# Observability smoke test: run fig1_loopy with the streaming JSONL trace
# sink, then drive the obs CLI over the trace and the emitted manifest.
# Everything lands in a scratch directory; the checked-in results/ is not
# touched. Fails if the trace is empty, the manifest is missing, or any
# obs subcommand errors.
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH="target/obs-smoke"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

cargo build --release -q -p ssr-bench --bin fig1_loopy --bin exp_chaos -p ssr-obs --bin obs
FIG1="$(pwd)/target/release/fig1_loopy"
CHAOS="$(pwd)/target/release/exp_chaos"
OBS="$(pwd)/target/release/obs"

echo "-- fig1_loopy with JSONL trace --"
(cd "$SCRATCH" && "$FIG1" --trace-jsonl trace.jsonl > fig1.out)
test -s "$SCRATCH/trace.jsonl" || { echo "empty trace"; exit 1; }
test -s "$SCRATCH/results/fig1_loopy.manifest.json" || { echo "missing manifest"; exit 1; }

echo "-- obs trace (send events only) --"
"$OBS" trace "$SCRATCH/trace.jsonl" --ev send | tail -1

echo "-- obs summarize --"
"$OBS" summarize "$SCRATCH/results/fig1_loopy.manifest.json" | head -20

echo "-- obs diff (manifest vs itself: must be clean) --"
"$OBS" diff "$SCRATCH/results/fig1_loopy.manifest.json" \
            "$SCRATCH/results/fig1_loopy.manifest.json" | grep -q "no differences"

echo "-- exp_chaos smoke (twice, wall clock omitted: must be byte-identical) --"
mkdir -p "$SCRATCH/chaos_a" "$SCRATCH/chaos_b"
(cd "$SCRATCH/chaos_a" && SSR_OBS_OMIT_WALL=1 "$CHAOS" --smoke > chaos.out)
(cd "$SCRATCH/chaos_b" && SSR_OBS_OMIT_WALL=1 "$CHAOS" --smoke > chaos.out)
cmp "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
    "$SCRATCH/chaos_b/results/exp_chaos.manifest.json" \
    || { echo "chaos manifest not deterministic"; exit 1; }

echo "-- obs summarize (chaos scenarios section) --"
"$OBS" summarize "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
    | grep -q "chaos scenarios" || { echo "missing chaos section"; exit 1; }

echo "-- obs diff (chaos manifests: must be clean) --"
"$OBS" diff "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
            "$SCRATCH/chaos_b/results/exp_chaos.manifest.json" | grep -q "no differences"

echo "obs smoke OK"
