#!/usr/bin/env bash
# Observability smoke test: run fig1_loopy with the streaming JSONL trace
# sink, then drive the obs CLI over the trace and the emitted manifest —
# including the provenance surface (obs causes on the trace, obs flame /
# obs top on the exp_chaos manifest, byte-identical chaos re-run with the
# causal ledger enabled). Everything lands in a scratch directory; the
# checked-in results/ is not touched. Fails if the trace is empty, the
# manifest is missing, any obs subcommand errors, flame output is not
# valid flamegraph.pl input, or obs top attributes < 95% of deliveries.
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH="target/obs-smoke"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

cargo build --release -q -p ssr-bench --bin fig1_loopy --bin exp_chaos -p ssr-obs --bin obs
FIG1="$(pwd)/target/release/fig1_loopy"
CHAOS="$(pwd)/target/release/exp_chaos"
OBS="$(pwd)/target/release/obs"

echo "-- fig1_loopy with JSONL trace --"
(cd "$SCRATCH" && "$FIG1" --trace-jsonl trace.jsonl > fig1.out)
test -s "$SCRATCH/trace.jsonl" || { echo "empty trace"; exit 1; }
test -s "$SCRATCH/results/fig1_loopy.manifest.json" || { echo "missing manifest"; exit 1; }

echo "-- obs trace (send events only) --"
"$OBS" trace "$SCRATCH/trace.jsonl" --ev send | tail -1

echo "-- obs trace (--kind filter) --"
"$OBS" trace "$SCRATCH/trace.jsonl" --ev deliver --kind hello | tail -1

echo "-- obs causes (lineage of the last delivered event) --"
pid="$(grep -o '"pid":[0-9]*' "$SCRATCH/trace.jsonl" | tail -1 | cut -d: -f2)"
test -n "$pid" || { echo "trace has no provenance ids"; exit 1; }
"$OBS" causes "$SCRATCH/trace.jsonl" "$pid" | head -12

echo "-- obs summarize --"
"$OBS" summarize "$SCRATCH/results/fig1_loopy.manifest.json" | head -20

echo "-- obs diff (manifest vs itself: must be clean) --"
"$OBS" diff "$SCRATCH/results/fig1_loopy.manifest.json" \
            "$SCRATCH/results/fig1_loopy.manifest.json" | grep -q "no differences"

echo "-- exp_chaos smoke (twice, wall clock omitted: must be byte-identical) --"
mkdir -p "$SCRATCH/chaos_a" "$SCRATCH/chaos_b"
(cd "$SCRATCH/chaos_a" && SSR_OBS_OMIT_WALL=1 "$CHAOS" --smoke > chaos.out)
(cd "$SCRATCH/chaos_b" && SSR_OBS_OMIT_WALL=1 "$CHAOS" --smoke > chaos.out)
cmp "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
    "$SCRATCH/chaos_b/results/exp_chaos.manifest.json" \
    || { echo "chaos manifest not deterministic"; exit 1; }

echo "-- obs summarize (chaos scenarios section) --"
"$OBS" summarize "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
    | grep -q "chaos scenarios" || { echo "missing chaos section"; exit 1; }

echo "-- obs diff (chaos manifests: must be clean) --"
"$OBS" diff "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" \
            "$SCRATCH/chaos_b/results/exp_chaos.manifest.json" | grep -q "no differences"

echo "-- obs flame (folded stacks: cause;kind;depth count) --"
"$OBS" flame "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" > "$SCRATCH/flame.folded"
test -s "$SCRATCH/flame.folded" || { echo "empty flame output"; exit 1; }
# every line must be flamegraph.pl input: three ;-separated frames + a count
bad="$(grep -cvE '^[a-z-]+;[a-z_-]+;depth:[0-9]+(-[0-9]+)? [0-9]+$' "$SCRATCH/flame.folded" || true)"
[ "$bad" -eq 0 ] || { echo "malformed folded stacks ($bad lines)"; exit 1; }
head -5 "$SCRATCH/flame.folded"

echo "-- obs top (cost attribution >= 95% of deliveries) --"
"$OBS" top "$SCRATCH/chaos_a/results/exp_chaos.manifest.json" | tee "$SCRATCH/top.out" | head -12
pct="$(grep -o 'attributed: [0-9]*/[0-9]* deliveries ([0-9.]*%)' "$SCRATCH/top.out" \
    | grep -o '([0-9.]*%' | tr -d '(%')"
awk -v p="$pct" 'BEGIN { exit !(p >= 95.0) }' \
    || { echo "attribution below 95% ($pct%)"; exit 1; }

echo "obs smoke OK"
