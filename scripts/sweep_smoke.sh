#!/usr/bin/env bash
# Byte-determinism gate for the sweep orchestrator (docs/SWEEPS.md): the
# same tiny exp_chaos matrix must produce byte-identical manifests AND
# byte-identical stdout at --workers 1 and --workers 4. SSR_OBS_OMIT_WALL
# suppresses the manifest's only wall-clock field; everything else must
# already be schedule-independent by construction (results collected by
# job index, merged in job order).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p ssr-bench --bin exp_chaos
bin="$(pwd)/target/release/exp_chaos"
matrix="scenario=corrupt-wound,corrupt-split;n=12;seeds=2"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

for w in 1 4; do
  mkdir -p "$scratch/w$w"
  (cd "$scratch/w$w" && SSR_OBS_OMIT_WALL=1 "$bin" --matrix "$matrix" --workers "$w" > stdout.txt)
done

cmp "$scratch/w1/results/exp_chaos.manifest.json" \
    "$scratch/w4/results/exp_chaos.manifest.json" || {
  echo "sweep smoke: manifest bytes differ between --workers 1 and 4" >&2
  exit 1
}
cmp "$scratch/w1/stdout.txt" "$scratch/w4/stdout.txt" || {
  echo "sweep smoke: stdout differs between --workers 1 and 4" >&2
  exit 1
}
echo "sweep smoke OK: manifest + stdout byte-identical across --workers 1/4"
