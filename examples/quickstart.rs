//! Quickstart: bootstrap a flood-free virtual ring and route a packet.
//!
//! ```text
//! cargo run --release -p ssr-core --example quickstart
//! ```
//!
//! Builds a small wireless-style network (unit-disk graph), runs the
//! linearized SSR bootstrap, validates global consistency, and routes a few
//! packets greedily over the converged route caches.

use ssr_core::bootstrap::{run_linearized_bootstrap, BootstrapConfig};
use ssr_core::routing::RoutingView;
use ssr_graph::{generators, Labeling};
use ssr_types::Rng;

fn main() {
    // 1. A physical network: 60 sensor nodes with radio-range links.
    let mut rng = Rng::new(42);
    let n = 60;
    let (topo, _positions) = generators::unit_disk_connected(n, 1.3, &mut rng);
    // addresses are random and independent of the physical layout
    let labels = Labeling::random(n, &mut rng);
    println!(
        "network: {n} nodes, {} links, diameter {:?}",
        topo.edge_count(),
        ssr_graph::algo::diameter_exact(&topo)
    );

    // 2. Bootstrap the virtual ring with linearization — no flooding.
    let config = BootstrapConfig {
        seed: 42,
        ..Default::default()
    };
    let (report, sim) = run_linearized_bootstrap(&topo, &labels, &config);
    println!(
        "bootstrap: converged={} in {} ticks, {} messages ({} floods)",
        report.converged,
        report.ticks,
        report.total_messages,
        report
            .messages
            .iter()
            .find(|(k, _)| k == "msg.flood")
            .map(|(_, v)| *v)
            .unwrap_or(0),
    );
    assert!(report.converged);

    // 3. The ring is globally consistent: greedy routing now succeeds for
    //    any pair.
    let view = RoutingView::new(sim.protocols());
    let mut delivered = 0;
    for _ in 0..10 {
        let a = labels.id(rng.index(n));
        let b = labels.id(rng.index(n));
        let outcome = view.route(a, b, 4 * n as u32);
        println!("route {a} -> {b}: {outcome:?}");
        if outcome.delivered() {
            delivered += 1;
        }
    }
    println!("{delivered}/10 packets delivered (must be 10)");
    assert_eq!(delivered, 10);
}
