//! A sensor/actuator network scenario — the workload SSR's introduction
//! motivates ("scalable routing for networked sensors and actuators").
//!
//! ```text
//! cargo run --release -p ssr-core --example sensor_network
//! ```
//!
//! 150 sensors are scattered over a field; radio range defines the physical
//! links. After the flood-free bootstrap, every sensor reports to a *sink*
//! chosen by address (DHT-style: the node whose address is the ring
//! successor of a well-known key) — the indirect-routing pattern the
//! virtual ring enables. Then half the field suffers a power brown-out
//! (nodes crash and rejoin) and the network re-converges on its own.

use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::consistency;
use ssr_core::routing::RoutingView;
use ssr_graph::{generators, Labeling};
use ssr_sim::{LinkConfig, Simulator, Time};
use ssr_types::{cw_dist, NodeId, Rng};

fn main() {
    let mut rng = Rng::new(7);
    let n = 150;
    let (topo, positions) = generators::unit_disk_connected(n, 1.25, &mut rng);
    let labels = Labeling::random(n, &mut rng);
    println!("field: {n} sensors, {} radio links", topo.edge_count());

    // bootstrap
    let cfg = BootstrapConfig::default();
    let nodes = make_ssr_nodes(&labels, cfg.ssr);
    let mut sim = Simulator::new(topo.clone(), nodes, LinkConfig::ideal(), 7);
    let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    println!(
        "bootstrap done at t={} (no floods: {})",
        outcome.time().ticks(),
        sim.metrics().counter("msg.flood") == 0
    );

    // DHT-style sink: the node whose address is the ring successor of a
    // well-known key
    let key = NodeId(0x5EED_5EED_5EED_5EED);
    let sink = labels
        .ids()
        .iter()
        .copied()
        .min_by_key(|&id| cw_dist(key, id))
        .unwrap();
    println!("sink for key {key}: node {sink}");

    // every sensor reports to the sink over the virtual ring
    let view = RoutingView::new(sim.protocols());
    let mut hops = Vec::new();
    for u in 0..n {
        let src = labels.id(u);
        let out = view.route(src, sink, 4 * n as u32);
        match out {
            ssr_core::routing::RouteOutcome::Delivered { physical_hops, .. } => {
                hops.push(physical_hops as f64)
            }
            other => panic!("sensor {src} failed to reach the sink: {other:?}"),
        }
    }
    let mean = hops.iter().sum::<f64>() / hops.len() as f64;
    println!("all {n} sensors reached the sink; mean physical hops {mean:.1}");

    // brown-out: sensors in the left half of the field crash, then rejoin
    let t0 = sim.now();
    let mut crashed = 0;
    for (u, pos) in positions.iter().enumerate() {
        if pos.x < 0.5 {
            sim.schedule_fault(t0 + 1, ssr_sim::faults::Fault::Crash { node: u });
            sim.schedule_fault(
                t0 + 120,
                ssr_sim::faults::Fault::Join {
                    node: u,
                    links: topo.neighbors(u).collect(),
                },
            );
            crashed += 1;
        }
    }
    println!("brown-out: {crashed} sensors down at t={}", t0.ticks() + 1);
    sim.run_until(Time(t0.ticks() + 150));
    let outcome = sim.run_until_stable(8, 300_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let ok = consistency::check_ring(sim.protocols()).consistent();
    println!(
        "re-converged: {ok} at t={} — still zero floods: {}",
        outcome.time().ticks(),
        sim.metrics().counter("msg.flood") == 0
    );
    assert!(ok);
}
