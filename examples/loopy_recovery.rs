//! Self-stabilization from an adversarial state: the paper's loopy ring
//! (Figure 1), dissolved by linearization without any flooding.
//!
//! ```text
//! cargo run --release -p ssr-core --example loopy_recovery
//! ```
//!
//! The physical network is a cycle wired in the doubly-wound order, so the
//! initial virtual ring (E_v := E_p) *is* the loopy state: every node
//! locally consistent, the ring globally wound twice. The linearized
//! protocol reads the address space as a line, which makes the winding
//! locally visible, and sorts it out.

use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::consistency::{self, RingShape};
use ssr_graph::{Graph, Labeling};
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::NodeId;

fn main() {
    // Figure 1's addresses and winding order.
    let ids = [1u64, 4, 9, 13, 18, 21, 25, 29];
    let order = [0usize, 2, 4, 6, 1, 3, 5, 7]; // 1,9,18,25,4,13,21,29
    let mut topo = Graph::new(8);
    for i in 0..8 {
        topo.add_edge(order[i], order[(i + 1) % 8]);
    }
    let labels = Labeling::from_ids(ids.iter().map(|&i| NodeId(i)).collect());

    // the initial successor relation (physical ring order) is loopy
    let succ: std::collections::BTreeMap<NodeId, NodeId> = (0..8)
        .map(|i| (NodeId(ids[order[i]]), NodeId(ids[order[(i + 1) % 8]])))
        .collect();
    println!("initial virtual ring (from the physical cycle):");
    for (a, b) in &succ {
        println!("  {a} -> {b}");
    }
    println!("shape: {:?}\n", consistency::classify_succ_map(&succ));
    assert_eq!(consistency::classify_succ_map(&succ), RingShape::Loopy(2));

    // run the linearized bootstrap
    let cfg = BootstrapConfig::default();
    let nodes = make_ssr_nodes(&labels, cfg.ssr);
    let mut sim = Simulator::new(topo, nodes, LinkConfig::ideal(), 1);
    let outcome = sim.run_until_stable(4, 50_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let report = consistency::check_ring(sim.protocols());
    println!(
        "linearized bootstrap: consistent={} at t={} — floods sent: {}",
        report.consistent(),
        outcome.time().ticks(),
        sim.metrics().counter("msg.flood")
    );
    assert!(report.consistent());
    assert_eq!(sim.metrics().counter("msg.flood"), 0);

    println!("\nfinal ring (successor walk):");
    let mut cur = NodeId(1);
    for _ in 0..8 {
        let node = sim.protocols().iter().find(|p| p.id() == cur).unwrap();
        let next = node.ring_succ().unwrap();
        println!("  {cur} -> {next}");
        cur = next;
    }
}
