//! The VRR transfer: the same linearized bootstrap over hop-by-hop path
//! state instead of source routes.
//!
//! ```text
//! cargo run --release -p ssr-core --example vrr_demo
//! ```
//!
//! Runs linearized VRR and baseline VRR (hello beacons carrying the
//! representative) side by side on the same small network, comparing
//! messages and per-node router state — including the structural
//! difference that VRR pays state at *intermediate* nodes of every virtual
//! path.

use ssr_graph::{generators, Labeling};
use ssr_sim::LinkConfig;
use ssr_types::Rng;
use ssr_vrr::bootstrap::run_vrr_bootstrap;
use ssr_vrr::node::VrrMode;
use ssr_vrr::VrrRoutingView;

fn main() {
    let mut rng = Rng::new(3);
    let n = 16;
    let (topo, _) = generators::unit_disk_connected(n, 1.4, &mut rng);
    let labels = Labeling::random(n, &mut rng);
    println!("network: {n} nodes, {} links\n", topo.edge_count());

    for (name, mode) in [
        ("linearized", VrrMode::Linearized),
        ("baseline (rep beacons)", VrrMode::Baseline),
    ] {
        // the baseline gets a small budget: its point here is the standing
        // beacon/dissemination cost, not convergence (see experiment E10)
        let budget = if mode == VrrMode::Linearized {
            200_000
        } else {
            3_000
        };
        let (report, sim) = run_vrr_bootstrap(&topo, &labels, mode, LinkConfig::ideal(), 3, budget);
        println!(
            "VRR {name}: converged={} at t={}, {} msgs, state max {} / mean {:.1}",
            report.converged,
            report.ticks,
            report.total_messages,
            report.max_state,
            report.mean_state
        );
        for (k, v) in &report.messages {
            println!("    {k}: {v}");
        }
        if mode == VrrMode::Linearized && report.converged {
            // route over the converged path state, VRR-style (per-hop)
            let view = VrrRoutingView::new(sim.protocols());
            let mut ok = 0;
            let mut total = 0;
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        total += 1;
                        if view
                            .route(labels.id(a), labels.id(b), 8 * n as u32)
                            .delivered()
                        {
                            ok += 1;
                        }
                    }
                }
            }
            println!("    routing: {ok}/{total} pairs delivered");
        }
        println!();
    }
}
