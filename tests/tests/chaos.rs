//! Chaos property tests: the paper's self-stabilization claim, checked
//! from *adversarially corrupted* virtual state over *arbitrary* connected
//! graphs — not just the curated topology families of the experiments.
//!
//! The property under test is E11's acceptance bar in miniature: whatever
//! (connected) physical graph and whatever garbage successor/predecessor
//! assignment the generator produces, linearization must converge to the
//! sorted ring without ever flooding.

use proptest::prelude::*;
use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::consistency;
use ssr_core::{chaos, SsrNode};
use ssr_graph::{Graph, Labeling};
use ssr_sim::{LinkConfig, Simulator};
use ssr_types::Rng;

/// Builds a connected graph from a random spanning tree (`parents[i - 1]`
/// picks node `i`'s parent among `0..i`) plus arbitrary extra edges.
fn connected_graph(parents: &[u64], extra: &[(u64, u64)]) -> Graph {
    let n = parents.len() + 1;
    let mut g = Graph::new(n);
    for (i, &p) in parents.iter().enumerate() {
        let child = i + 1;
        g.add_edge(child, (p % child as u64) as usize);
    }
    for &(a, b) in extra {
        let (u, v) = ((a % n as u64) as usize, (b % n as u64) as usize);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Walks the converged state and asserts it is exactly the sorted ring:
/// every node's closest right neighbor is its sorted-order successor and
/// the two extremes are mutually wrapped.
fn assert_sorted_ring(nodes: &[SsrNode], labels: &Labeling) {
    let mut ids = labels.ids().to_vec();
    ids.sort();
    for w in ids.windows(2) {
        let node = &nodes[labels.index(w[0]).unwrap()];
        assert_eq!(
            node.closest_right(),
            Some(w[1]),
            "{:?} does not point at its sorted successor",
            w[0]
        );
    }
    let min = &nodes[labels.index(ids[0]).unwrap()];
    let max = &nodes[labels.index(*ids.last().unwrap()).unwrap()];
    assert_eq!(min.wrap_pred(), Some(*ids.last().unwrap()));
    assert_eq!(max.wrap_succ(), Some(ids[0]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A uniformly random successor/predecessor assignment (not even a
    /// permutation — see [`chaos::random_succ`]) injected over an arbitrary
    /// connected graph converges to the sorted ring with zero floods.
    #[test]
    fn random_succ_over_arbitrary_connected_graph_self_stabilizes(
        parents in proptest::collection::vec(any::<u64>(), 3..16),
        extra in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..12),
        label_seed in any::<u64>(),
        succ_seed in any::<u64>(),
    ) {
        let g = connected_graph(&parents, &extra);
        let n = g.node_count();
        let labels = Labeling::random(n, &mut Rng::new(label_seed));
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::new(g, nodes, LinkConfig::ideal(), 7);

        let succ = chaos::random_succ(labels.ids(), &mut Rng::new(succ_seed));
        chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);

        let outcome = sim.run_until_stable(8, 100_000, |nodes, _| {
            consistency::check_ring(nodes).consistent()
        });
        prop_assert!(
            outcome.is_quiescent(),
            "did not converge from corrupted start: n={n} outcome={outcome:?}"
        );
        prop_assert!(consistency::check_ring(sim.protocols()).consistent());
        assert_sorted_ring(sim.protocols(), &labels);
        prop_assert_eq!(sim.metrics().counter("msg.flood"), 0, "flooded!");
    }
}
