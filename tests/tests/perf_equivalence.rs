//! Same-seed equivalence: the tick-wheel event queue against the
//! pre-change reference heap.
//!
//! The simulator's event-driven hot path (the `BTreeMap`-backed pending-
//! delivery wheel, the dirty-node ledger, probe fast-forwarding) replaced
//! a `BinaryHeap` with a global insertion-sequence tie-break. The old
//! structure is retained as [`ssr_sim::QueueBackend::ReferenceHeap`]
//! solely so this file can prove the replacement changed *nothing
//! observable*: on E11-style chaos scenarios — corrupted starts, lossy
//! duplicated reordered links, partitions with heals — both backends must
//! produce byte-identical run manifests and identical full event traces.
//!
//! Any future queue change that alters delivery order on equal ticks will
//! fail here before it silently invalidates every recorded experiment.

use std::rc::Rc;

use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::{chaos, consistency};
use ssr_obs::Manifest;
use ssr_sim::faults::Fault;
use ssr_sim::{LinkConfig, QueueBackend, Simulator, Time, TraceEvent, TraceSink};
use ssr_types::Rng;
use ssr_workloads::Topology;

/// Everything observable about one chaos run: the manifest JSON (wall
/// time omitted), the full trace, and the end state.
struct RunArtifacts {
    manifest_json: String,
    trace: Vec<TraceEvent>,
    end_tick: u64,
    converged: bool,
}

/// One E11-style scenario: which corruption seeds the virtual state and
/// whether a partition window interrupts recovery.
#[derive(Clone, Copy)]
enum Scenario {
    WoundRing,
    RandomSucc,
    PartitionHeal,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::WoundRing => "wound-ring",
            Scenario::RandomSucc => "random-succ",
            Scenario::PartitionHeal => "partition-heal",
        }
    }
}

/// Runs `scenario` at size `n` under the given queue backend and captures
/// every observable artifact. Mirrors the `exp_chaos` run shape: adverse
/// links, corrupted starts, scheduled faults, invariant probe on its grid.
fn run_chaos(scenario: Scenario, n: usize, seed: u64, backend: QueueBackend) -> RunArtifacts {
    // wall-clock manifests can never be byte-identical; omit the field
    std::env::set_var("SSR_OBS_OMIT_WALL", "1");
    let (g, labels) = Topology::UnitDisk { n, scale: 1.4 }.instance(seed ^ 0xA5A5);
    let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
    // duplication + reordering stress equal-tick delivery order — exactly
    // where a queue rewrite would diverge first
    let link = LinkConfig::ideal().with_dup(0.1).with_reorder(0.15, 4);
    let trace = TraceSink::memory();
    let mut sim = Simulator::with_trace_backend(g, nodes, link, seed, trace.clone(), backend);

    let mut frng = Rng::new(seed ^ 0x00C4);
    match scenario {
        Scenario::WoundRing => {
            let succ = chaos::wound_ring_succ(labels.ids(), 3.min(n));
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Scenario::RandomSucc => {
            let succ = chaos::random_succ(labels.ids(), &mut frng);
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Scenario::PartitionHeal => {
            let groups = ssr_sim::faults::partition_groups(n, 2, &mut frng);
            sim.schedule_fault(Time(40), Fault::Partition { groups });
            sim.schedule_fault(Time(400), Fault::Heal);
        }
    }

    let inv = chaos::shared_invariants(500);
    sim.add_probe(16, chaos::invariant_probe(labels.clone(), Rc::clone(&inv)));

    if matches!(scenario, Scenario::PartitionHeal) {
        sim.run_until(Time(450));
    }
    let outcome = sim.run_until_stable(8, 100_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let converged = consistency::check_ring(sim.protocols()).consistent();

    let mut man = Manifest::new("perf_equivalence");
    man.seed(seed)
        .config("scenario", scenario.name())
        .config("n", n)
        .record_metrics(sim.metrics());
    RunArtifacts {
        manifest_json: man.to_json(),
        trace: trace.take(),
        end_tick: outcome.time().ticks(),
        converged,
    }
}

/// The acceptance-criteria test: for every scenario and seed, the wheel
/// and the reference heap produce byte-identical manifests and identical
/// traces.
#[test]
fn tick_wheel_is_byte_identical_to_reference_heap_on_chaos_scenarios() {
    for scenario in [
        Scenario::WoundRing,
        Scenario::RandomSucc,
        Scenario::PartitionHeal,
    ] {
        for seed in [1u64, 2] {
            let n = 24;
            let wheel = run_chaos(scenario, n, seed, QueueBackend::TickWheel);
            let heap = run_chaos(scenario, n, seed, QueueBackend::ReferenceHeap);
            assert!(
                wheel.converged && heap.converged,
                "{} seed={seed}: did not converge (wheel={}, heap={})",
                scenario.name(),
                wheel.converged,
                heap.converged
            );
            assert_eq!(
                wheel.end_tick,
                heap.end_tick,
                "{} seed={seed}: end tick diverged",
                scenario.name()
            );
            assert_eq!(
                wheel.manifest_json,
                heap.manifest_json,
                "{} seed={seed}: manifests diverged",
                scenario.name()
            );
            assert_eq!(
                wheel.trace.len(),
                heap.trace.len(),
                "{} seed={seed}: trace lengths diverged",
                scenario.name()
            );
            // element-wise so a divergence reports its position, not a
            // multi-thousand-line debug dump
            for (i, (we, he)) in wheel.trace.iter().zip(heap.trace.iter()).enumerate() {
                assert_eq!(
                    we,
                    he,
                    "{} seed={seed}: traces diverge at event {i}",
                    scenario.name()
                );
            }
        }
    }
}

/// The same run repeated on the same backend is byte-identical to itself —
/// the determinism baseline that makes the cross-backend comparison
/// meaningful.
#[test]
fn chaos_runs_are_self_deterministic() {
    let a = run_chaos(Scenario::RandomSucc, 24, 5, QueueBackend::TickWheel);
    let b = run_chaos(Scenario::RandomSucc, 24, 5, QueueBackend::TickWheel);
    assert_eq!(a.manifest_json, b.manifest_json);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.end_tick, b.end_tick);
}
