//! Workspace-level integration tests: full bootstrap → consistency →
//! routing pipelines across every crate, on each topology family.

use ssr_core::bootstrap::{run_isprp_bootstrap, run_linearized_bootstrap, BootstrapConfig};
use ssr_core::consistency::{self, RingShape};
use ssr_core::routing::RoutingView;
use ssr_graph::algo;
use ssr_sim::faults::poisson_crash_rejoin_trace;
use ssr_sim::{LinkConfig, Simulator, Time};
use ssr_types::{NodeId, Rng};
use ssr_vrr::bootstrap::run_vrr_bootstrap;
use ssr_vrr::node::VrrMode;
use ssr_workloads::scenario::traffic_pairs;
use ssr_workloads::Topology;

/// The linearized bootstrap converges and routes on every topology family.
#[test]
fn bootstrap_and_route_on_every_family() {
    let topos = [
        Topology::UnitDisk { n: 40, scale: 1.3 },
        Topology::Regular { n: 40, d: 4 },
        Topology::Gnp { n: 40, c: 2.0 },
        Topology::PowerLaw { n: 40, alpha: 2.0 },
        Topology::PreferentialAttachment { n: 40, m: 2 },
        Topology::SmallWorld {
            n: 40,
            k: 4,
            beta: 0.2,
        },
        Topology::Ring { n: 40 },
        Topology::Grid { n: 36 },
    ];
    for topo in topos {
        let (g, labels) = topo.instance(11);
        let n = g.node_count();
        let cfg = BootstrapConfig {
            max_ticks: 200_000,
            ..Default::default()
        };
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        assert!(
            report.converged,
            "{} did not converge: {report:?}",
            topo.family()
        );
        assert!(
            !report.messages.iter().any(|(k, _)| k == "msg.flood"),
            "{} flooded!",
            topo.family()
        );
        // route a sample of pairs
        let view = RoutingView::new(sim.protocols());
        let mut rng = Rng::new(99);
        for (a, b) in traffic_pairs(n, 50, &mut rng) {
            let out = view.route(labels.id(a), labels.id(b), 4 * n as u32);
            assert!(out.delivered(), "{}: {} -> {} failed", topo.family(), a, b);
        }
    }
}

/// ISPRP with the flood also converges — and the two mechanisms agree on
/// the final ring (it is unique: the sorted order).
#[test]
fn isprp_and_linearized_agree_on_the_ring() {
    let topo = Topology::UnitDisk { n: 30, scale: 1.3 };
    let (g, labels) = topo.instance(5);
    let cfg = BootstrapConfig {
        max_ticks: 200_000,
        ..Default::default()
    };
    let (lin, lin_sim) = run_linearized_bootstrap(&g, &labels, &cfg);
    let (isp, isp_sim) = run_isprp_bootstrap(&g, &labels, &cfg);
    assert!(lin.converged && isp.converged);
    // successor maps must be identical
    let lin_succ: Vec<(NodeId, NodeId)> = {
        let mut v: Vec<_> = lin_sim
            .protocols()
            .iter()
            .map(|p| (p.id(), p.ring_succ().unwrap()))
            .collect();
        v.sort();
        v
    };
    let isp_succ: Vec<(NodeId, NodeId)> = {
        let mut v: Vec<_> = isp_sim
            .protocols()
            .iter()
            .map(|p| (p.id(), p.succ().unwrap()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(lin_succ, isp_succ);
}

/// The linearized VRR bootstrap reaches the same ring as linearized SSR.
#[test]
fn vrr_and_ssr_build_the_same_ring() {
    let topo = Topology::UnitDisk { n: 16, scale: 1.4 };
    let (g, labels) = topo.instance(3);
    let cfg = BootstrapConfig {
        max_ticks: 200_000,
        ..Default::default()
    };
    let (ssr, ssr_sim) = run_linearized_bootstrap(&g, &labels, &cfg);
    let (vrr, vrr_sim) = run_vrr_bootstrap(
        &g,
        &labels,
        VrrMode::Linearized,
        LinkConfig::ideal(),
        3,
        200_000,
    );
    assert!(ssr.converged, "{ssr:?}");
    assert!(vrr.converged, "{vrr:?}");
    let mut ssr_succ: Vec<_> = ssr_sim
        .protocols()
        .iter()
        .map(|p| (p.id(), p.ring_succ().unwrap()))
        .collect();
    let mut vrr_succ: Vec<_> = vrr_sim
        .protocols()
        .iter()
        .map(|p| (p.id(), p.ring_succ().unwrap()))
        .collect();
    ssr_succ.sort();
    vrr_succ.sort();
    assert_eq!(ssr_succ, vrr_succ);
}

/// Full determinism across the crate stack: identical seeds give identical
/// reports.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let topo = Topology::UnitDisk { n: 35, scale: 1.3 };
        let (g, labels) = topo.instance(77);
        let cfg = BootstrapConfig {
            seed: 123,
            ..Default::default()
        };
        let (report, _) = run_linearized_bootstrap(&g, &labels, &cfg);
        (report.ticks, report.total_messages, report.messages.clone())
    };
    assert_eq!(run(), run());
}

/// Churn: crash/rejoin bursts are absorbed without flooding.
#[test]
fn churn_recovery_without_flooding() {
    let topo = Topology::UnitDisk { n: 40, scale: 1.4 };
    let (g, labels) = topo.instance(21);
    let cfg = BootstrapConfig::default();
    let nodes = ssr_core::bootstrap::make_ssr_nodes(&labels, cfg.ssr);
    let mut sim = Simulator::new(g.clone(), nodes, LinkConfig::ideal(), 9);
    let outcome = sim.run_until_stable(8, 200_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(outcome.is_quiescent(), "initial bootstrap failed");
    let t0 = sim.now();
    let mut frng = Rng::new(4242);
    let trace = poisson_crash_rejoin_trace(
        40,
        t0 + 1,
        Time(t0.ticks() + 200),
        0.02,
        30,
        |u| g.neighbors(u).collect(),
        &mut frng,
    );
    assert!(!trace.is_empty());
    for f in trace {
        sim.schedule_fault(f.at, f.fault);
    }
    sim.run_until(Time(t0.ticks() + 260));
    let outcome = sim.run_until_stable(8, 200_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    let report = consistency::check_ring(sim.protocols());
    assert!(
        report.consistent(),
        "no re-convergence: {report:?} ({outcome:?})"
    );
    assert_eq!(sim.metrics().counter("msg.flood"), 0);
}

/// Lossy links: the handshake retries and audits still converge the ring.
#[test]
fn lossy_links_still_converge() {
    let topo = Topology::UnitDisk { n: 25, scale: 1.4 };
    let (g, labels) = topo.instance(13);
    let cfg = BootstrapConfig {
        link: LinkConfig::lossy(0.05),
        max_ticks: 400_000,
        seed: 5,
        ..Default::default()
    };
    let (report, _) = run_linearized_bootstrap(&g, &labels, &cfg);
    assert!(report.converged, "{report:?}");
}

/// Jittered latency (asynchronous timing) does not break convergence.
#[test]
fn jittered_latency_converges() {
    let topo = Topology::UnitDisk { n: 30, scale: 1.3 };
    let (g, labels) = topo.instance(17);
    let cfg = BootstrapConfig {
        link: LinkConfig::jittered(1, 5),
        max_ticks: 400_000,
        ..Default::default()
    };
    let (report, _) = run_linearized_bootstrap(&g, &labels, &cfg);
    assert!(report.converged, "{report:?}");
}

/// The observer checkers recognize the adversarial states of Figures 1–2
/// end to end (duplicating the figure binaries as tests).
#[test]
fn figure_states_classify_correctly() {
    // loopy ring over the Figure-1 addresses
    let ids = [1u64, 4, 9, 13, 18, 21, 25, 29];
    let order = [0usize, 2, 4, 6, 1, 3, 5, 7];
    let succ: std::collections::BTreeMap<NodeId, NodeId> = (0..8)
        .map(|i| (NodeId(ids[order[i]]), NodeId(ids[order[(i + 1) % 8]])))
        .collect();
    assert_eq!(consistency::classify_succ_map(&succ), RingShape::Loopy(2));
    // two disjoint rings (Figure 2)
    let succ2: std::collections::BTreeMap<NodeId, NodeId> =
        [(1u64, 9), (9, 18), (18, 1), (4, 13), (13, 21), (21, 4)]
            .iter()
            .map(|&(a, b)| (NodeId(a), NodeId(b)))
            .collect();
    assert_eq!(
        consistency::classify_succ_map(&succ2),
        RingShape::Partitioned(2)
    );
}

/// Abstract engine and protocol agree: the protocol's final line order is
/// the identifier sort, which is what the engine converges to as well.
#[test]
fn engine_and_protocol_agree_on_the_line() {
    let topo = Topology::Gnp { n: 24, c: 2.0 };
    let (g, labels) = topo.instance(2);
    // engine (rank space)
    let (rg, _) = ssr_linearize::convergence::relabel_to_ranks(&g, &labels);
    let engine_run = ssr_linearize::run(
        &rg,
        ssr_linearize::Variant::lsn(),
        ssr_linearize::Semantics::Star,
        4000,
    );
    assert!(engine_run.line_at.is_some());
    // protocol
    let cfg = BootstrapConfig {
        max_ticks: 200_000,
        ..Default::default()
    };
    let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
    assert!(report.converged);
    // the protocol's ring successor order must be the sorted id order
    let mut sorted: Vec<NodeId> = labels.ids().to_vec();
    sorted.sort();
    let mut cur = sorted[0];
    for expected in sorted.iter().skip(1) {
        let node = sim.protocols().iter().find(|p| p.id() == cur).unwrap();
        let next = node.ring_succ().unwrap();
        assert_eq!(next, *expected);
        cur = next;
    }
    // sanity on the physical graph
    assert!(algo::is_connected(&g));
}
