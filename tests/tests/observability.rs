//! Observability guarantees, workspace-level: histogram merge laws,
//! percentile accuracy, and the determinism contract — two same-seed runs
//! must produce byte-identical JSONL traces and manifests, and the `obs`
//! diff must surface real differences between different-seed runs.

use proptest::prelude::*;
use ssr_core::bootstrap::{make_ssr_nodes, run_linearized_bootstrap, BootstrapConfig};
use ssr_core::routing::RoutingView;
use ssr_obs::Manifest;
use ssr_sim::{Histogram, LinkConfig, Simulator, Time, TraceSink};
use ssr_vrr::bootstrap::run_vrr_bootstrap;
use ssr_vrr::{VrrMode, VrrRoutingView};
use ssr_workloads::Topology;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is bucketwise, so it must be associative and commutative,
    /// and merging per-seed histograms must equal histogramming the
    /// concatenated observations — the property the cross-seed manifest
    /// merge relies on.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
        zs in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let concat: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&concat));
    }

    /// The percentile estimate always lands in the same log₂ bucket as the
    /// exact nearest-rank percentile (and never outside `[min, max]`).
    #[test]
    fn percentile_lands_in_the_exact_value_bucket(
        values in proptest::collection::vec(any::<u64>(), 1..80),
        q in 0.0f64..100.0,
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let est = h.percentile(q).unwrap();
        prop_assert_eq!(
            Histogram::bucket_index(est),
            Histogram::bucket_index(exact),
            "q={} exact={} est={}", q, exact, est
        );
        prop_assert!(est >= h.min().unwrap() && est <= h.max().unwrap());
    }
}

fn bootstrap_manifest(instance_seed: u64) -> Manifest {
    let topo = Topology::UnitDisk { n: 30, scale: 1.3 };
    let (g, labels) = topo.instance(instance_seed);
    let cfg = BootstrapConfig::default();
    let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
    assert!(report.converged);
    let mut man = Manifest::new("determinism_test");
    man.seed(instance_seed)
        .config("n", 30)
        .record_metrics(sim.metrics());
    for p in &report.timeline {
        man.timeline_point(ssr_obs::TimelinePoint {
            tick: p.tick,
            shape: p.shape.label(),
            locally_consistent: p.locally_consistent as u64,
            nodes: p.nodes as u64,
            churn: p.succ_churn as u64,
        });
    }
    man
}

/// Two runs with identical seeds and configuration must serialize to
/// byte-identical manifests (wall time is never recorded here).
#[test]
fn same_seed_runs_produce_byte_identical_manifests() {
    let a = bootstrap_manifest(7);
    let b = bootstrap_manifest(7);
    assert!(a.timeline_len() > 0, "timeline must be recorded");
    assert_eq!(a.to_json(), b.to_json());
}

/// Two runs with identical seeds streaming to JSONL files must produce
/// byte-identical traces.
#[test]
fn same_seed_runs_produce_byte_identical_jsonl_traces() {
    let dir = std::env::temp_dir().join("ssr_obs_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |path: &std::path::Path| {
        let topo = Topology::UnitDisk { n: 20, scale: 1.3 };
        let (g, labels) = topo.instance(3);
        let sink = TraceSink::jsonl_file(path).unwrap();
        let cfg = BootstrapConfig::default();
        let nodes = make_ssr_nodes(&labels, cfg.ssr);
        let mut sim = Simulator::with_trace(g, nodes, LinkConfig::lossy(0.05), 3, sink.clone());
        sim.run_until(Time(400));
        sink.flush().unwrap();
        sink.len()
    };
    let pa = dir.join("a.jsonl");
    let pb = dir.join("b.jsonl");
    let la = run(&pa);
    let lb = run(&pb);
    assert_eq!(la, lb);
    assert!(la > 0, "the run must emit trace events");
    let ta = std::fs::read(&pa).unwrap();
    let tb = std::fs::read(&pb).unwrap();
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "same-seed JSONL traces must be byte-identical");
    // every line is valid JSON with the stable schema fields
    for line in String::from_utf8(ta).unwrap().lines() {
        let v = ssr_obs::parse(line).unwrap();
        assert!(
            v.get("ev").is_some() && v.get("at").is_some(),
            "bad line: {line}"
        );
    }
}

/// The routing layers were migrated from `HashMap` to `BTreeMap`
/// (`RouteCache` occupants, `RoutingView`/`VrrRoutingView` id indexes, route
/// loop-pruning) so that nothing route-visible depends on hasher seeding.
/// This pins that down end to end: two same-seed runs — SSR and VRR alike —
/// must produce an *identical* per-pair routing transcript, not merely equal
/// aggregate stats.
#[test]
fn same_seed_routing_transcripts_are_identical() {
    fn ssr_transcript(seed: u64) -> String {
        let topo = Topology::UnitDisk { n: 24, scale: 1.3 };
        let (g, labels) = topo.instance(seed);
        let cfg = BootstrapConfig::default();
        let (report, sim) = run_linearized_bootstrap(&g, &labels, &cfg);
        assert!(report.converged);
        let view = RoutingView::new(sim.protocols());
        let mut out = String::new();
        for a in 0..24usize {
            for b in 0..24usize {
                let outcome = view.route(labels.id(a), labels.id(b), 96);
                out.push_str(&format!("{a}->{b} {outcome:?}\n"));
            }
        }
        out
    }
    fn vrr_transcript(seed: u64) -> String {
        let topo = Topology::UnitDisk { n: 16, scale: 1.3 };
        let (g, labels) = topo.instance(seed);
        let (report, sim) = run_vrr_bootstrap(
            &g,
            &labels,
            VrrMode::Linearized,
            LinkConfig::ideal(),
            seed,
            60_000,
        );
        assert!(report.converged);
        let view = VrrRoutingView::new(sim.protocols());
        let mut out = String::new();
        for a in 0..16usize {
            for b in 0..16usize {
                let outcome = view.route(labels.id(a), labels.id(b), 64);
                out.push_str(&format!("{a}->{b} {outcome:?}\n"));
            }
        }
        out
    }
    let ssr = ssr_transcript(11);
    assert!(
        ssr.contains("Delivered"),
        "SSR transcript must route something"
    );
    assert_eq!(
        ssr,
        ssr_transcript(11),
        "SSR routing must be seed-deterministic"
    );
    let vrr = vrr_transcript(11);
    assert!(
        vrr.contains("Delivered"),
        "VRR transcript must route something"
    );
    assert_eq!(
        vrr,
        vrr_transcript(11),
        "VRR routing must be seed-deterministic"
    );
}

/// Different-seed manifests must diff as *different*: counter deltas are
/// reported and the "no differences" path is not taken.
#[test]
fn diff_of_different_seed_manifests_reports_deltas() {
    let a = bootstrap_manifest(1);
    let b = bootstrap_manifest(2);
    let report = ssr_obs::diff(
        &ssr_obs::parse(&a.to_json()).unwrap(),
        &ssr_obs::parse(&b.to_json()).unwrap(),
    );
    assert!(
        !report.contains("no differences"),
        "different seeds must differ:\n{report}"
    );
    assert!(
        report.contains("tx.total"),
        "counter deltas must be reported:\n{report}"
    );
    // identical manifests still diff clean
    let clean = ssr_obs::diff(
        &ssr_obs::parse(&a.to_json()).unwrap(),
        &ssr_obs::parse(&a.to_json()).unwrap(),
    );
    assert!(clean.contains("no differences"), "{clean}");
}
