//! Provenance invariants over chaos scenarios: the causal lineage every
//! event carries (see docs/PROFILING.md) must form a DAG rooted only at
//! bootstrap and fault events, with depth growing by exactly one per
//! link, and the causal ledger's per-kind totals must reconcile with the
//! simulator's own delivery counter. A final test pins provenance-id
//! assignment across queue backends: ids are part of the deterministic
//! observable surface, so the tick wheel and the reference heap must
//! produce byte-identical lineages.

use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::{chaos, consistency};
use ssr_sim::faults::Fault;
use ssr_sim::{
    CauseClass, LinkConfig, Provenance, QueueBackend, Simulator, Time, TraceEvent, TraceSink,
};
use ssr_types::Rng;
use ssr_workloads::Topology;

/// Which corruption/fault shape a run starts from.
#[derive(Clone, Copy, Debug)]
enum Scenario {
    WoundRing,
    RandomSucc,
    PartitionHeal,
}

struct Run {
    trace: Vec<TraceEvent>,
    messages_delivered: u64,
    ledger_delivered_by_kind: Vec<(&'static str, u64)>,
}

/// An E11-shaped instrumented chaos run with a full in-memory trace.
/// Mirrors `perf_equivalence::run_chaos` but with the causal ledger on.
fn run_instrumented(scenario: Scenario, n: usize, seed: u64, backend: QueueBackend) -> Run {
    std::env::set_var("SSR_OBS_OMIT_WALL", "1");
    let (g, labels) = Topology::UnitDisk { n, scale: 1.4 }.instance(seed ^ 0xA5A5);
    let nodes = make_ssr_nodes(&labels, BootstrapConfig::default().ssr);
    let link = LinkConfig::ideal().with_dup(0.1).with_reorder(0.15, 4);
    let trace = TraceSink::memory();
    let mut sim = Simulator::instrumented(g, nodes, link, seed, trace.clone(), backend);

    let mut frng = Rng::new(seed ^ 0x00C4);
    match scenario {
        Scenario::WoundRing => {
            let succ = chaos::wound_ring_succ(labels.ids(), 3.min(n));
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Scenario::RandomSucc => {
            let succ = chaos::random_succ(labels.ids(), &mut frng);
            chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
        }
        Scenario::PartitionHeal => {
            let groups = ssr_sim::faults::partition_groups(n, 2, &mut frng);
            sim.schedule_fault(Time(40), Fault::Partition { groups });
            sim.schedule_fault(Time(400), Fault::Heal);
        }
    }

    let inv = chaos::shared_invariants(500);
    sim.add_probe(16, chaos::invariant_probe(labels.clone(), Rc::clone(&inv)));

    if matches!(scenario, Scenario::PartitionHeal) {
        sim.run_until(Time(450));
    }
    let outcome = sim.run_until_stable(8, 100_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(
        outcome.is_quiescent() && consistency::check_ring(sim.protocols()).consistent(),
        "{scenario:?} seed={seed}: did not converge"
    );
    let summary = sim.causal_summary().expect("instrumented run has a ledger");
    let mut by_kind: Vec<(&'static str, u64)> = Vec::new();
    for (&(_, kind), stats) in &summary.messages {
        match by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, v)) => *v += stats.delivered,
            None => by_kind.push((kind, stats.delivered)),
        }
    }
    Run {
        trace: trace.take(),
        messages_delivered: sim.metrics().counter("rx.total"),
        ledger_delivered_by_kind: by_kind,
    }
}

/// Every provenance stamp a trace exposes, in emission order.
fn provenances(trace: &[TraceEvent]) -> Vec<Provenance> {
    trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Send { prov, .. }
            | TraceEvent::Deliver { prov, .. }
            | TraceEvent::Lost { prov, .. }
            | TraceEvent::TimerFired { prov, .. }
            | TraceEvent::Fault { prov, .. } => Some(*prov),
            _ => None,
        })
        .collect()
}

/// The lineage invariants: ids are unique per event, parents precede
/// children (so the lineage is acyclic), depth is exactly parent+1, roots
/// are exactly the parentless events, and only bootstrap or fault-repair
/// events are roots.
fn assert_lineage_is_rooted_dag(provs: &[Provenance]) {
    let mut seen: HashMap<u64, Provenance> = HashMap::new();
    for p in provs {
        if let Some(prev) = seen.get(&p.id) {
            // the same event may surface in several records (send +
            // deliver, or a timer's set + fire) — always with one stamp
            assert_eq!(prev, p, "pid {} has two different stamps", p.id);
            continue;
        }
        seen.insert(p.id, *p);
    }
    for p in seen.values() {
        match p.parent {
            None => {
                assert_eq!(p.depth, 0, "parentless pid {} has depth {}", p.id, p.depth);
                assert_eq!(p.root, p.id, "root pid {} points at root {}", p.id, p.root);
                assert!(
                    matches!(p.cause, CauseClass::Bootstrap | CauseClass::FaultRepair),
                    "root pid {} has cause {:?} — lineage must root only at \
                     bootstrap/fault events",
                    p.id,
                    p.cause
                );
            }
            Some(parent) => {
                assert!(
                    parent.get() < p.id,
                    "pid {} has parent {parent} >= itself — ids are dense in \
                     allocation order, so this would be a cycle",
                    p.id
                );
                assert!(p.depth > 0, "pid {} has a parent but depth 0", p.id);
                // the parent may be invisible in the trace (an event that
                // produced no record is possible only for dispatch-internal
                // steps; every queued event traces) — when visible, check
                // the depth and root links exactly
                if let Some(pp) = seen.get(&parent.get()) {
                    assert_eq!(
                        p.depth,
                        pp.depth + 1,
                        "pid {} depth {} != parent {parent} depth {} + 1",
                        p.id,
                        p.depth,
                        pp.depth
                    );
                    assert_eq!(
                        p.root, pp.root,
                        "pid {} root differs from parent's root",
                        p.id
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lineage_is_a_dag_rooted_at_bootstrap_and_faults(
        seed in 0u64..1000,
        scenario_ix in 0usize..3,
    ) {
        let scenario = [Scenario::WoundRing, Scenario::RandomSucc, Scenario::PartitionHeal]
            [scenario_ix];
        let run = run_instrumented(scenario, 20, seed, QueueBackend::TickWheel);
        let provs = provenances(&run.trace);
        prop_assert!(!provs.is_empty());
        assert_lineage_is_rooted_dag(&provs);

        // fault events are lineage roots with the fault-repair cause
        for e in &run.trace {
            if let TraceEvent::Fault { prov, .. } = e {
                prop_assert_eq!(prov.depth, 0);
                prop_assert!(matches!(prov.cause, CauseClass::FaultRepair));
            }
        }

        // the ledger's per-kind delivered totals sum to the simulator's
        // own delivery counter — the attribution is complete
        let ledger_total: u64 = run.ledger_delivered_by_kind.iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(ledger_total, run.messages_delivered);

        // and each kind's ledger cell matches the delivered events in the
        // trace for that kind
        let mut trace_by_kind: HashMap<&'static str, u64> = HashMap::new();
        for e in &run.trace {
            if let TraceEvent::Deliver { kind, .. } = e {
                *trace_by_kind.entry(kind).or_insert(0) += 1;
            }
        }
        for &(kind, delivered) in &run.ledger_delivered_by_kind {
            prop_assert_eq!(
                trace_by_kind.get(kind).copied().unwrap_or(0),
                delivered,
                "kind {} ledger/trace mismatch",
                kind
            );
        }
    }
}

/// Provenance ids are assigned at enqueue time from a dense counter, so
/// the queue backend must not affect them: the tick wheel and the
/// reference heap produce byte-identical provenance streams.
#[test]
fn provenance_ids_are_identical_across_queue_backends() {
    for (scenario, seed) in [
        (Scenario::WoundRing, 1u64),
        (Scenario::RandomSucc, 2),
        (Scenario::PartitionHeal, 3),
    ] {
        let wheel = run_instrumented(scenario, 24, seed, QueueBackend::TickWheel);
        let heap = run_instrumented(scenario, 24, seed, QueueBackend::ReferenceHeap);
        let wp = provenances(&wheel.trace);
        let hp = provenances(&heap.trace);
        assert_eq!(
            wp.len(),
            hp.len(),
            "{scenario:?} seed={seed}: provenance stream lengths diverged"
        );
        for (i, (w, h)) in wp.iter().zip(hp.iter()).enumerate() {
            assert_eq!(
                w, h,
                "{scenario:?} seed={seed}: provenance diverges at record {i}"
            );
        }
    }
}
