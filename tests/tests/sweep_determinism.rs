//! The sweep orchestrator's headline guarantee, pinned end to end: a
//! merged experiment artifact — manifest JSON *and* the concatenated JSONL
//! event trace — is **byte-identical** across `--workers 1`, `2`, and `8`,
//! and independent of completion order (a deliberately slow first job
//! forces completion order ≠ input order).
//!
//! The matrix here is E11 (`exp_chaos`) in miniature: corrupted-start
//! recovery scenarios × network size × seed, each cell a sealed simulation
//! with the trace sink on. See docs/SWEEPS.md for the contract this test
//! enforces.

use std::sync::atomic::{AtomicUsize, Ordering};

use ssr_core::bootstrap::{make_ssr_nodes, BootstrapConfig};
use ssr_core::{chaos, consistency};
use ssr_obs::Manifest;
use ssr_sim::{trace::event_to_jsonl, LinkConfig, Metrics, Simulator, TraceSink};
use ssr_types::Rng;
use ssr_workloads::{run_matrix, Matrix, Topology};

/// One sweep cell: an E11-style corrupted-start recovery run with the
/// trace ledger on. Returns (recovery ticks, metrics registry, JSONL
/// trace lines) — everything a merged artifact is built from.
fn run_cell(scenario: &str, n: usize, seed: u64) -> (u64, Metrics, Vec<String>) {
    let topo = Topology::UnitDisk { n, scale: 1.4 };
    let (g, labels) = topo.instance(seed.wrapping_mul(41) ^ n as u64);
    let cfg = BootstrapConfig::default();
    let nodes = make_ssr_nodes(&labels, cfg.ssr);
    let sink = TraceSink::memory();
    let mut sim = Simulator::with_trace(g, nodes, LinkConfig::ideal(), seed, sink.clone());
    let succ = match scenario {
        "wound" => chaos::wound_ring_succ(labels.ids(), 2.min(n)),
        "split" => chaos::split_rings_succ(labels.ids(), 2),
        _ => chaos::random_succ(labels.ids(), &mut Rng::new(seed ^ 0xBEEF)),
    };
    chaos::apply_succ_corruption(&mut sim, &labels, &succ, true);
    let outcome = sim.run_until_stable(8, 100_000, |nodes, _| {
        consistency::check_ring(nodes).consistent()
    });
    assert!(
        outcome.is_quiescent(),
        "recovery failed ({scenario}, n={n}, seed={seed})"
    );
    let trace = sink.snapshot().iter().map(event_to_jsonl).collect();
    (sim.now().ticks(), sim.metrics().clone(), trace)
}

/// The mini E11 matrix every test here sweeps.
fn matrix() -> Matrix {
    Matrix::new(["wound", "split", "random"], vec![10, 16], 3)
}

/// Builds the canonical merged artifact from a sweep's outputs: a manifest
/// (merged metrics + per-cell aggregates, no wall time) and the
/// job-order-concatenated JSONL trace.
fn artifact(sweep: &ssr_workloads::SweepOutcome<(u64, Metrics, Vec<String>)>) -> (String, String) {
    let mut man = Manifest::new("sweep_determinism");
    man.seed(sweep.matrix.seeds[0])
        .config("matrix", sweep.matrix.describe());
    man.record_metrics(&sweep.merge_metrics(|o| &o.1));
    for (scenario, n, cell) in sweep.cells() {
        let ticks: u64 = cell.iter().map(|c| c.0).sum();
        man.extra(&format!("{scenario}_n{n}_ticks"), ticks.into());
    }
    let trace: Vec<String> = sweep
        .outputs
        .iter()
        .flat_map(|o| o.2.iter().cloned())
        .collect();
    (man.to_json(), trace.join("\n"))
}

/// The tentpole guarantee: manifest bytes and trace bytes are identical at
/// worker counts 1, 2, and 8 — the schedule never reaches the artifact.
#[test]
fn merged_artifact_bytes_are_worker_count_independent() {
    let m = matrix();
    let (ref_json, ref_trace) = {
        let sweep = run_matrix(&m, 1, |job| run_cell(m.name(job), job.n, job.seed));
        artifact(&sweep)
    };
    assert!(ref_json.contains("wound_n10_ticks"));
    assert!(!ref_trace.is_empty(), "cells must emit trace events");
    for workers in [2, 8] {
        let sweep = run_matrix(&m, workers, |job| run_cell(m.name(job), job.n, job.seed));
        let (json, trace) = artifact(&sweep);
        assert_eq!(
            json, ref_json,
            "manifest bytes drifted at workers={workers}"
        );
        assert_eq!(trace, ref_trace, "trace bytes drifted at workers={workers}");
    }
}

/// Completion order is adversarial: the first job busy-waits until every
/// other job has finished, so it completes *last* — the artifact must not
/// move a byte, because results are collected by job index, not by
/// completion order.
#[test]
fn slow_first_job_cannot_reorder_the_artifact() {
    let m = matrix();
    let serial = {
        let sweep = run_matrix(&m, 1, |job| run_cell(m.name(job), job.n, job.seed));
        artifact(&sweep)
    };
    let done = AtomicUsize::new(0);
    let total = m.len();
    let sweep = run_matrix(&m, 4, |job| {
        if job.index == 0 {
            while done.load(Ordering::SeqCst) < total - 1 {
                std::hint::spin_loop();
            }
        }
        let out = run_cell(m.name(job), job.n, job.seed);
        done.fetch_add(1, Ordering::SeqCst);
        out
    });
    assert_eq!(artifact(&sweep), serial);
}

/// `--matrix` reshaping composes with the guarantee: an overridden matrix
/// is still byte-stable across worker counts and records its resolved
/// dimensions (never the worker count).
#[test]
fn overridden_matrix_is_byte_stable_too() {
    let mut m = matrix();
    m.override_with("scenario=wound,random;n=12;seeds=2")
        .unwrap();
    let run = |workers| {
        let sweep = run_matrix(&m, workers, |job| run_cell(m.name(job), job.n, job.seed));
        artifact(&sweep)
    };
    let (json, trace) = run(1);
    assert_eq!(run(8), (json.clone(), trace));
    assert!(json.contains("scenario=wound,random;n=12;seed=0,1"));
    assert!(!json.contains("workers"));
}
