# Developer entry points. `just` lists these recipes; `./ci.sh` mirrors `just ci`.

# build + test + clippy + fmt + observability smoke
ci:
    ./ci.sh

# release build of the whole workspace
build:
    cargo build --workspace --release

# all tests, quiet
test:
    cargo test --workspace --quiet

# lints as errors
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# determinism & protocol-invariant static analysis (ssr-lint)
lint-proto:
    cargo run --release -q -p ssr-lint -- --workspace --baseline lint-baseline.json

# formatting check
fmt:
    cargo fmt --all --check

# rustdoc, warning-free (the CI doc gate)
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# orchestrator byte-determinism: tiny exp_chaos matrix, manifests and
# stdout byte-compared between --workers 1 and 4 (docs/SWEEPS.md)
sweep-smoke:
    ./scripts/sweep_smoke.sh

# fig1_loopy with the streaming JSONL sink, then obs trace/summarize/diff
obs-smoke:
    ./scripts/obs_smoke.sh

# chaos matrix smoke: adversarial scenarios must self-stabilize
chaos-smoke:
    cargo run --release -q -p ssr-bench --bin exp_chaos -- --smoke

# criterion suites: routine-level (micro) + algorithm-level (bench_core)
bench:
    cargo bench -p ssr-bench --bench micro
    cargo bench -p ssr-bench --bench bench_core

# regenerate the committed perf baseline (BENCH_perf.json at the repo root)
perf-baseline:
    cargo run --release -p ssr-bench --bin exp_perf

# folded causal stacks (cause;kind;depth) from a fresh chaos smoke run,
# written to results/flame.folded — pipe into flamegraph.pl / inferno
flame:
    cargo build --release -q -p ssr-bench --bin exp_chaos -p ssr-obs --bin obs
    rm -rf target/flame && mkdir -p target/flame results
    cd target/flame && SSR_OBS_OMIT_WALL=1 ../../target/release/exp_chaos --smoke > /dev/null
    ./target/release/obs flame target/flame/results/exp_chaos.manifest.json > results/flame.folded
    @echo "wrote results/flame.folded ($(wc -l < results/flame.folded) stacks)"
